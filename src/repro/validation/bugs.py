"""Performance bugs as first-class, injectable objects (Section 3.1.2).

"Performance bugs can be subtle but disastrous ... subtle performance bugs
can live in a production simulator for years."  The two MXS bugs the paper
reports are modelled so the find-and-fix story is runnable:

* **fast-issue** -- an instruction moved through the pipeline too quickly
  when all of its resources were available at issue; results stayed
  believable because the triggering circumstances were not the common
  case.  Injected as a <1 factor on the dataflow schedule.
* **cacheop-retry** -- the MIPS CACHE instruction invalidated a dirty line
  but never signalled completion; the processor stalled until a timer
  interrupt retried it ~one million cycles later.  Unnoticed for months
  because the stall was small relative to total run time.

``demonstrate_bug`` runs a probe workload with and without a bug injected
and reports how much the bug distorts predicted time -- and, for the
cacheop bug, why it hid (its share of a full application run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.common.config import MachineScale, REPRO_SCALE
from repro.common.errors import ConfigurationError
from repro.isa.opcodes import Op
from repro.isa.trace import ChunkExec, PhaseMark, Trace
from repro.sim.configs import SimulatorConfig
from repro.sim.machine import run_workload
from repro.vm.layout import VirtualLayout
from repro.workloads.base import Workload
from repro.workloads.builder import ChunkBuilder


@dataclass(frozen=True)
class PerformanceBug:
    """A named, injectable simulator defect."""

    name: str
    description: str
    inject: Callable[[SimulatorConfig], SimulatorConfig]


def _inject_fast_issue(config: SimulatorConfig) -> SimulatorConfig:
    core = config.core.with_updates(fast_issue_bug_factor=0.85)
    return config.with_core(core, suffix="+fastissue")


def _inject_cacheop(config: SimulatorConfig) -> SimulatorConfig:
    core = config.core.with_updates(cacheop_bug_stall_cycles=1_000_000.0)
    return config.with_core(core, suffix="+cacheop")


FAST_ISSUE_BUG = PerformanceBug(
    name="fast-issue",
    description="instructions issue too quickly when resources are free "
                "(found by the Rivet pipeline visualisation)",
    inject=_inject_fast_issue,
)

CACHEOP_BUG = PerformanceBug(
    name="cacheop-retry",
    description="mis-handled MIPS CACHE instruction stalls graduation for "
                "~1M cycles until a timer interrupt retries it",
    inject=_inject_cacheop,
)

KNOWN_BUGS: Dict[str, PerformanceBug] = {
    bug.name: bug for bug in (FAST_ISSUE_BUG, CACHEOP_BUG)
}


def get_bug(name: str) -> PerformanceBug:
    try:
        return KNOWN_BUGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown bug {name!r}; known: {sorted(KNOWN_BUGS)}"
        ) from None


class CacheFlushWorkload(Workload):
    """A kernel that flushes buffers with the CACHE instruction.

    Mixes streaming writes with periodic CACHE (writeback-invalidate)
    instructions, the pattern that triggered the cacheop-retry bug.
    """

    name = "cacheflush"

    def __init__(self, scale: MachineScale = REPRO_SCALE,
                 n_lines: int = 512, flush_every: int = 64,
                 compute_reps: int = 4000):
        super().__init__(scale)
        self.n_lines = n_lines
        self.flush_every = flush_every
        self.compute_reps = compute_reps
        layout = VirtualLayout(self.page)
        self.buffer = layout.add(
            "flushbuf", n_lines * scale.l2.line_bytes)

    def problem_description(self) -> str:
        return (f"{self.n_lines} lines written, CACHE op every "
                f"{self.flush_every}")

    def build(self, n_cpus: int) -> List[Trace]:
        write = ChunkBuilder("flush/write")
        write.store(value_reg=1)
        write_chunk = write.build()
        flush = ChunkBuilder("flush/cacheop")
        flush.cacheop()
        flush_chunk = flush.build()
        compute = ChunkBuilder("flush/compute")
        # Background work the bug's stall hides in for months.
        compute.compute_parallel([Op.FADD] * 16, regs=list(range(1, 9)))
        compute_chunk = compute.build()

        line = self.scale.l2.line_bytes
        addrs = self.buffer.base + np.arange(
            self.n_lines, dtype=np.int64) * line
        trace: List = [PhaseMark(PhaseMark.PARALLEL, begin=True)]
        for start in range(0, self.n_lines, self.flush_every):
            block = addrs[start:start + self.flush_every]
            trace.append(ChunkExec(write_chunk, block.reshape(-1, 1)))
            trace.append(ChunkExec(flush_chunk, block[:1].reshape(1, 1)))
            trace.append(ChunkExec(compute_chunk, reps=self.compute_reps))
        trace.append(PhaseMark(PhaseMark.PARALLEL, begin=False))
        traces: List[Trace] = [trace]
        for _ in range(1, n_cpus):
            traces.append([])
        return traces


@dataclass
class BugDemonstration:
    """Outcome of running a probe with and without a bug."""

    bug: str
    workload: str
    config: str
    clean_ps: int
    buggy_ps: int

    @property
    def distortion(self) -> float:
        """Fractional time error introduced by the bug."""
        return (self.buggy_ps - self.clean_ps) / self.clean_ps

    def format(self) -> str:
        return (
            f"{self.bug} on {self.workload} ({self.config}): "
            f"clean {self.clean_ps / 1e9:.3f} ms vs buggy "
            f"{self.buggy_ps / 1e9:.3f} ms ({self.distortion:+.1%})"
        )


def demonstrate_bug(bug: PerformanceBug, config: SimulatorConfig, workload,
                    n_cpus: int = 1,
                    scale: Optional[MachineScale] = None) -> BugDemonstration:
    """Run *workload* with and without *bug* injected into *config*."""
    from repro.sim import farm_hooks
    from repro.sim.request import RunRequest

    clean, buggy = farm_hooks.dispatch([
        RunRequest(config, workload, n_cpus, scale),
        RunRequest(bug.inject(config), workload, n_cpus, scale),
    ])
    return BugDemonstration(
        bug=bug.name,
        workload=workload.name,
        config=config.name,
        clean_ps=clean.parallel_ps,
        buggy_ps=buggy.parallel_ps,
    )
