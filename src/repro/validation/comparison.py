"""Simulator-vs-reference comparison runs (Figures 1-4).

``compare_simulators`` runs a set of simulator configurations and a set of
workloads against the gold-standard configuration at a fixed processor
count and reports relative execution times -- one call per comparison
figure.  Reference runs are cached per (workload, P) so a figure's seven
simulator columns share a single gold run.

The whole matrix (references + simulator runs) is expressed as one
:class:`~repro.sim.request.RunRequest` batch and dispatched through
:mod:`repro.sim.farm_hooks`: serial and identical to the historical loop
when no farm is active, fanned out and cached when one is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineScale
from repro.obs.diff import diff_runs
from repro.sim import farm_hooks
from repro.sim.configs import SimulatorConfig, hardware_config
from repro.sim.request import RunRequest
from repro.sim.results import RunResult
from repro.validation.metrics import relative_time
from repro.vm.allocators import Placement


@dataclass
class ComparisonRow:
    """One bar of a comparison figure.

    ``attribution`` explains *why* the bar sits where it does: when the
    matrix ran under the tracer (both the reference and this simulator's
    run carry breakdowns), it holds the
    :meth:`~repro.obs.diff.AttributionDiff.to_dict` waterfall of the gap.
    Untraced runs leave it None at zero cost.
    """

    workload: str
    config: str
    n_cpus: int
    sim_ps: int
    reference_ps: int
    attribution: Optional[Dict] = None

    @property
    def relative(self) -> float:
        return relative_time(self.sim_ps, self.reference_ps)


@dataclass
class ComparisonTable:
    """All bars of one figure, with formatting helpers."""

    title: str
    rows: List[ComparisonRow] = field(default_factory=list)

    def relative_of(self, workload: str, config: str) -> float:
        for row in self.rows:
            if row.workload == workload and row.config == config:
                return row.relative
        raise KeyError((workload, config))

    def by_workload(self) -> Dict[str, List[ComparisonRow]]:
        out: Dict[str, List[ComparisonRow]] = {}
        for row in self.rows:
            out.setdefault(row.workload, []).append(row)
        return out

    def format(self) -> str:
        configs: List[str] = []
        for row in self.rows:
            if row.config not in configs:
                configs.append(row.config)
        lines = [self.title]
        header = f"{'workload':10s}" + "".join(f"{c:>24s}" for c in configs)
        lines.append(header)
        for workload, rows in self.by_workload().items():
            by_config = {r.config: r for r in rows}
            cells = "".join(
                f"{by_config[c].relative:24.2f}" if c in by_config else " " * 24
                for c in configs
            )
            lines.append(f"{workload:10s}{cells}")
        return "\n".join(lines)


class ReferenceCache:
    """Caches gold-standard runs across figures of one session."""

    def __init__(self, reference: Optional[SimulatorConfig] = None):
        self.reference = reference or hardware_config()
        self._runs: Dict[Tuple, RunResult] = {}

    def _key(self, workload, n_cpus: int, scale: Optional[MachineScale],
             placement: str) -> Tuple:
        return (workload.name, workload.problem_description(), n_cpus,
                placement, (scale or workload.scale).name)

    def lookup(self, workload, n_cpus: int, scale: Optional[MachineScale],
               placement: str = Placement.FIRST_TOUCH) -> Optional[RunResult]:
        return self._runs.get(self._key(workload, n_cpus, scale, placement))

    def store(self, workload, n_cpus: int, scale: Optional[MachineScale],
              placement: str, result: RunResult) -> RunResult:
        self._runs[self._key(workload, n_cpus, scale, placement)] = result
        return result

    def run(self, workload, n_cpus: int, scale: Optional[MachineScale],
            placement: str = Placement.FIRST_TOUCH) -> RunResult:
        hit = self.lookup(workload, n_cpus, scale, placement)
        if hit is None:
            hit = self.store(workload, n_cpus, scale, placement,
                             farm_hooks.run(RunRequest(
                                 self.reference, workload, n_cpus, scale,
                                 placement)))
        return hit


def compare_simulators(
    configs: Sequence[SimulatorConfig],
    workloads: Sequence,
    n_cpus: int = 1,
    scale: Optional[MachineScale] = None,
    reference_cache: Optional[ReferenceCache] = None,
    title: str = "",
    placement: str = Placement.FIRST_TOUCH,
) -> ComparisonTable:
    """Run the matrix and return relative execution times."""
    cache = reference_cache or ReferenceCache()
    table = ComparisonTable(title or f"relative execution time, P={n_cpus}")
    # One batch for the whole figure: references the session cache lacks,
    # plus every simulator bar, dispatched together.
    requests: List[RunRequest] = []
    slots: List[Tuple[str, object, Optional[SimulatorConfig]]] = []
    for workload in workloads:
        if cache.lookup(workload, n_cpus, scale, placement) is None:
            requests.append(RunRequest(cache.reference, workload, n_cpus,
                                       scale, placement))
            slots.append(("ref", workload, None))
        for config in configs:
            requests.append(RunRequest(config, workload, n_cpus, scale,
                                       placement))
            slots.append(("sim", workload, config))
    outcomes = farm_hooks.dispatch(requests)

    sims: Dict[Tuple[str, str], RunResult] = {}
    for (kind, workload, config), result in zip(slots, outcomes):
        if kind == "ref":
            cache.store(workload, n_cpus, scale, placement, result)
        else:
            sims[(workload.name, config.name)] = result
    for workload in workloads:
        ref = cache.lookup(workload, n_cpus, scale, placement)
        for config in configs:
            sim = sims[(workload.name, config.name)]
            attribution = None
            if ref.breakdown is not None and sim.breakdown is not None:
                attribution = diff_runs(ref, sim).to_dict()
            table.rows.append(ComparisonRow(
                workload=workload.name,
                config=config.name,
                n_cpus=n_cpus,
                sim_ps=sim.parallel_ps,
                reference_ps=ref.parallel_ps,
                attribution=attribution,
            ))
    return table
