"""The validation dashboard: one self-contained accuracy report.

``python -m repro.harness all --dashboard out/`` folds everything the
closing-the-loop machinery produces into two files:

* ``dashboard.md`` -- terminal/PR-friendly markdown: headline check
  counts, the per-experiment paper-vs-measured tables, attribution
  waterfalls for every finding that carries a *why* payload, the trend
  studies, one unicode sparkline per metrics-ledger run group, and a
  "How fast is the simulator" table fed by the committed BENCH perf
  ledgers (:mod:`repro.obs.perf`);
* ``dashboard.html`` -- the same content as a standalone page (inline
  CSS, no external assets, light/dark via ``prefers-color-scheme``).

Chart conventions: signed attribution deltas use a diverging blue/red
pair around a neutral midline (blue = the candidate spends *less* machine
time than the reference there, red = *more*); pass/fail is a reserved
status color plus a glyph label, never color alone; sparklines are a
single series hue.
"""

from __future__ import annotations

import html as _html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.validation.report import sparkline

#: Experiments whose findings form the "does it predict the trend" story.
TREND_EXPERIMENTS = ("fig5", "fig6", "fig7")

#: Role -> (light, dark) colors; the validated reference palette.
_PALETTE = {
    "surface": ("#fcfcfb", "#1a1a19"),
    "surface2": ("#f0efec", "#242423"),
    "ink": ("#0b0b0b", "#ffffff"),
    "ink2": ("#52514e", "#c3c2b7"),
    "grid": ("#e4e3df", "#383835"),
    "pos": ("#e34948", "#e66767"),   # candidate spends MORE (diverging warm)
    "neg": ("#2a78d6", "#3987e5"),   # candidate spends LESS (diverging cool)
    "series": ("#2a78d6", "#3987e5"),
    "good": ("#008300", "#33a033"),
    "bad": ("#e34948", "#e66767"),
}


def _is_waterfall(payload: Dict) -> bool:
    """True for AttributionDiff-shaped payloads (vs e.g. tuning records)."""
    return isinstance(payload, dict) and "overall" in payload


def _is_topo(payload: Dict) -> bool:
    """True for HotspotReport-shaped payloads (the spatial evidence)."""
    return isinstance(payload, dict) and payload.get("kind") == "topo"


def _is_txn(payload: Dict) -> bool:
    """True for TxnReport-shaped payloads (the latency anatomy)."""
    return isinstance(payload, dict) and payload.get("kind") == "txn"


def collect_attributions(results: Sequence) -> List[Tuple[str, str, Dict]]:
    """Every attribution payload in *results*: (exp_id, owner, payload)."""
    out = []
    for result in results:
        if result.attribution is not None:
            out.append((result.exp_id, "", result.attribution))
        for finding in result.findings:
            if finding.attribution is not None:
                out.append((result.exp_id, finding.name, finding.attribution))
    return out


def group_ledger(records: Sequence) -> Dict[Tuple, List]:
    """Ledger records grouped for trend rows, insertion-ordered."""
    groups: Dict[Tuple, List] = {}
    for record in records:
        groups.setdefault(record.group(), []).append(record)
    return groups


# ---------------------------------------------------------------------------
# markdown
# ---------------------------------------------------------------------------

def _md_waterfall(exp_id: str, owner: str, payload: Dict,
                  width: int = 16) -> List[str]:
    from repro.obs.diff import AttributionDiff

    diff = AttributionDiff.from_dict(payload)
    where = f"`{exp_id}`" + (f" / {owner}" if owner else "")
    lines = [
        f"**{where}** — {diff.workload}: `{diff.cand_config}` vs "
        f"`{diff.ref_config}` (P={diff.n_cpus}), "
        f"error {diff.percent_error:+.1f}%, "
        f"{100 * diff.explained_fraction:.1f}% of the gap attributed",
        "",
        "| category | delta (ms) | share | |",
        "|---|---:|---:|:---|",
    ]
    peak = max([abs(d.delta_ps) for d in diff.overall]
               + [abs(diff.residual_ps), 1.0])
    rows = [(d.category, d.delta_ps) for d in diff.overall]
    rows.append(("residual", diff.residual_ps))
    for category, delta in rows:
        n = int(round(width * abs(delta) / peak))
        bar = ("`" + "#" * n + "`") if n else ""
        sign = "+" if delta >= 0 else "−"
        lines.append(
            f"| {category} | {delta / 1e9:+.3f} | "
            f"{100 * diff.share(delta):+.1f}% | {sign}{bar} |")
    lines.append("")
    return lines


def _md_tuning(exp_id: str, owner: str, payload: Dict) -> List[str]:
    where = f"`{exp_id}`" + (f" / {owner}" if owner else "")
    tlb = payload.get("tlb_refill_cycles", {})
    lines = [
        f"**{where}** — calibration against `{payload.get('reference', '?')}`"
        f" ({payload.get('rounds', '?')} round(s)):",
        f"- TLB refill {tlb.get('before', 0):.0f} → {tlb.get('after', 0):.0f}"
        f" cycles (target {tlb.get('target', 0):.0f})",
        f"- L2 interface occupancy "
        f"{payload.get('l2_port_occupancy_cycles', 0):.1f} cycles",
    ]
    before = payload.get("case_error_before", {})
    after = payload.get("case_error_after", {})
    for case in before:
        lines.append(f"- {case}: error {100 * before[case]:+.1f}% → "
                     f"{100 * after.get(case, 0):+.1f}%")
    lines.append("")
    return lines


def _md_topo(exp_id: str, owner: str, payload: Dict) -> List[str]:
    from repro.obs.hotspot import HotspotReport

    report = HotspotReport.from_dict(payload)
    where = f"`{exp_id}`" + (f" / {owner}" if owner else "")
    node, share = report.hottest_home()
    lines = [
        f"**{where}** — {report.workload_name} on `{report.config_name}` "
        f"(P={report.n_nodes}): {report.total_accesses} DSM transactions, "
        f"{100 * report.remote_fraction:.1f}% remote, hottest home node "
        f"{node} ({100 * share:.1f}% of home traffic)",
        "",
        "| req\\home | " + " | ".join(str(h) for h in range(report.n_nodes))
        + " |",
        "|---|" + "---:|" * report.n_nodes,
    ]
    for r in range(report.n_nodes):
        lines.append(f"| **{r}** | "
                     + " | ".join(str(v) for v in report.matrix[r]) + " |")
    lines.append("")
    if report.hot_regions:
        lines += [
            f"Top hot {report.region}s ({report.region_bytes} B):",
            "",
            "| region | home | accesses | remote | sharers | requesters |",
            "|---|---:|---:|---:|---:|---|",
        ]
        for hr in report.hot_regions[:5]:
            req = ",".join(str(n) for n in hr.requesters)
            lines.append(
                f"| `{hr.base_paddr:#x}` | {hr.home} | {hr.accesses} "
                f"| {100 * hr.remote_fraction:.0f}% | {hr.peak_sharers} "
                f"| {req} |")
        lines.append("")
    if report.link_heat:
        busiest = report.link_heat[0]
        lines.append(
            f"Busiest link `{busiest['link']}`: {busiest['msgs']} messages, "
            f"{busiest['busy_ps'] / 1e6:.2f} us busy, "
            f"{busiest['wait_ps'] / 1e6:.2f} us queued.")
        lines.append("")
    return lines


def _md_txn(exp_id: str, owner: str, payload: Dict) -> List[str]:
    from repro.obs.txn import TxnReport, _fmt_ps

    report = TxnReport.from_dict(payload)
    where = f"`{exp_id}`" + (f" / {owner}" if owner else "")
    lines = [
        f"**{where}** — {report.workload} on `{report.config}` "
        f"(P={report.n_cpus}): {report.total_txns} transactions in "
        f"{len(report.kinds)} kinds; residual {report.residual_ps} ps "
        f"across {report.residual_txns} transactions",
        "",
        "| kind | count | p50 | p90 | p99 | mean |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for key in sorted(report.kinds):
        entry = report.kinds[key]
        mean = entry["total_ps"] // max(1, entry["count"])
        lines.append(
            f"| `{key}` | {entry['count']} | {_fmt_ps(entry['p50_ps'])} "
            f"| {_fmt_ps(entry['p90_ps'])} | {_fmt_ps(entry['p99_ps'])} "
            f"| {_fmt_ps(mean)} |")
    lines.append("")
    if report.top:
        slowest = report.top[-1]
        seg = ", ".join(
            f"{name} {_fmt_ps(wait + service)}"
            for name, wait, service in slowest["segments"])
        lines.append(
            f"Slowest: `{slowest['kind']}` node{slowest['node']}→"
            f"home{slowest['home']}, {_fmt_ps(slowest['latency_ps'])} "
            f"({seg}; residual {slowest['residual_ps']} ps).")
        lines.append("")
    return lines


def _md_bench(bench_records: Sequence) -> List[str]:
    from repro.obs.perf import dominant_reason

    lines = [
        "## How fast is the simulator", "",
        "Headline wall clocks from the committed BENCH perf ledgers "
        "(`benchmarks/BENCH_*.json`, the frozen schema of "
        "`repro.obs.perf`); `python -m repro.obs perf --baseline ...` "
        "gates regressions against these numbers.",
        "",
        "| bench | case | wall (s) | events/s | speedup | batched "
        "| dominant fallback |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    for r in sorted(bench_records, key=lambda r: (r.bench, r.case)):
        eps = ("" if r.events_per_sec is None
               else f"{r.events_per_sec:,.0f}")
        speedup = "" if r.speedup is None else f"{r.speedup:.1f}x"
        batched = ("" if r.batch_fraction is None
                   else f"{100 * r.batch_fraction:.1f}%")
        reason = dominant_reason(r.fallback_reasons or {}) or ""
        lines.append(f"| {r.bench} | `{r.case}` | {r.wall_s:.3f} | {eps} "
                     f"| {speedup} | {batched} | {reason} |")
    lines.append("")
    return lines


def render_markdown(results: Sequence, ledger_records: Sequence = (),
                    title: str = "Validation dashboard",
                    bench_records: Sequence = ()) -> str:
    total = sum(len(r.findings) for r in results)
    ok = sum(1 for r in results for f in r.findings if f.ok)
    runs = sum(r.farm_runs for r in results)
    hits = sum(r.farm_hits for r in results)
    wall = sum(r.wall_seconds for r in results)
    lines = [
        f"# {title}",
        "",
        f"**{ok}/{total} shape checks hold** across {len(results)} "
        f"experiment(s) in {wall:.1f}s "
        f"({runs} simulated, {hits} replayed from cache).",
        "",
        "## Paper vs. measured",
        "",
        "| experiment | checks | status |",
        "|---|---|:---|",
    ]
    for result in results:
        n_ok = sum(1 for f in result.findings if f.ok)
        n = len(result.findings)
        status = "✓ ok" if n_ok == n else f"✗ {n - n_ok} off"
        lines.append(f"| `{result.exp_id}` {result.title} | {n_ok}/{n} "
                     f"| {status} |")
    lines.append("")
    failing = [(r, f) for r in results for f in r.findings if not f.ok]
    if failing:
        lines += ["### Checks that do not hold", ""]
        for result, finding in failing:
            note = f" ({finding.note})" if finding.note else ""
            lines.append(f"- `{result.exp_id}` {finding.name}: paper "
                         f"{finding.paper}, measured {finding.measured}{note}")
        lines.append("")

    attributions = collect_attributions(results)
    if attributions:
        lines += ["## Where the error comes from", "",
                  "Signed share of each candidate-vs-reference machine-time "
                  "gap (`+` = candidate spends more there, `−` = less; the "
                  "residual row is whatever the traces leave unattributed).",
                  ""]
        for exp_id, owner, payload in attributions:
            if _is_waterfall(payload):
                lines += _md_waterfall(exp_id, owner, payload)
            elif payload.get("kind") == "tuning":
                lines += _md_tuning(exp_id, owner, payload)

    topos = [(e, o, p) for e, o, p in attributions if _is_topo(p)]
    if topos:
        lines += ["## Where in the machine", "",
                  "Spatial evidence from the topo recorder: DSM traffic "
                  "bucketed by (requesting node, home node), the hottest "
                  "address regions with their sharer sets, and link heat.",
                  ""]
        for exp_id, owner, payload in topos:
            lines += _md_topo(exp_id, owner, payload)

    txns = [(e, o, p) for e, o, p in attributions if _is_txn(p)]
    if txns:
        lines += ["## Where does latency come from", "",
                  "Per-transaction anatomy from the txn recorder: each "
                  "memory transaction followed end-to-end (CPU issue → "
                  "directory → network → reply), segments summing exactly "
                  "to its latency with an explicit residual row.",
                  ""]
        for exp_id, owner, payload in txns:
            lines += _md_txn(exp_id, owner, payload)

    trends = [r for r in results if r.exp_id in TREND_EXPERIMENTS]
    if trends:
        lines += ["## Trend agreement", ""]
        for result in trends:
            for finding in result.findings:
                mark = "✓" if finding.ok else "✗"
                lines.append(f"- {mark} `{result.exp_id}` {finding.name}: "
                             f"{finding.measured}")
        lines.append("")

    groups = group_ledger(ledger_records)
    if groups:
        lines += ["## Ledger trends", "",
                  "Parallel time per run group, oldest → newest "
                  "(▁ low … █ high within each row).", "",
                  "| run group | records | trend | latest (ms) | error |",
                  "|---|---:|---|---:|---:|"]
        for group, history in sorted(groups.items()):
            workload, config, n_cpus, scale = group
            spark = sparkline([r.parallel_ps for r in history])
            latest = history[-1]
            err = ("" if latest.percent_error is None
                   else f"{latest.percent_error:+.1f}%")
            lines.append(
                f"| {workload}@{config}/P{n_cpus}/{scale} | {len(history)} "
                f"| {spark} | {latest.parallel_ps / 1e9:.3f} | {err} |")
        lines.append("")

    if bench_records:
        lines += _md_bench(bench_records)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# html
# ---------------------------------------------------------------------------

def _css() -> str:
    light = "".join(f"--{k}:{v[0]};" for k, v in _PALETTE.items())
    dark = "".join(f"--{k}:{v[1]};" for k, v in _PALETTE.items())
    return f"""
:root {{ color-scheme: light dark; {light} }}
@media (prefers-color-scheme: dark) {{ :root {{ {dark} }} }}
body {{ margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
  background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif; }}
h1, h2, h3 {{ line-height: 1.2; }}
.sub {{ color: var(--ink2); }}
.tiles {{ display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }}
.tile {{ background: var(--surface2); border-radius: 8px;
  padding: .7rem 1.1rem; min-width: 8rem; }}
.tile b {{ display: block; font-size: 1.5rem; }}
.tile span {{ color: var(--ink2); font-size: .85rem; }}
table {{ border-collapse: collapse; margin: .5rem 0 1.5rem; }}
th, td {{ text-align: left; padding: .25rem .7rem;
  border-bottom: 1px solid var(--grid); }}
th {{ color: var(--ink2); font-weight: 600; }}
td.num, th.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
.ok {{ color: var(--good); }}
.bad {{ color: var(--bad); }}
.wf {{ display: flex; align-items: center; height: 14px; width: 280px; }}
.wf .l, .wf .r {{ height: 8px; }}
.wf .l {{ margin-left: auto; background: var(--neg);
  border-radius: 4px 0 0 4px; }}
.wf .r {{ background: var(--pos); border-radius: 0 4px 4px 0; }}
.wf .half {{ width: 50%; display: flex; }}
.wf .mid {{ width: 2px; height: 14px; background: var(--grid); }}
.legend {{ color: var(--ink2); font-size: .85rem; margin: .3rem 0 .8rem; }}
.swatch {{ display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin: 0 .3rem 0 .8rem; }}
details {{ margin: .4rem 0 1rem; }}
pre {{ background: var(--surface2); padding: .8rem; border-radius: 8px;
  overflow-x: auto; font-size: 12px; line-height: 1.35; }}
svg.spark polyline {{ stroke: var(--series); }}
""".strip()


def _esc(text: object) -> str:
    return _html.escape(str(text))


def _html_waterfall_rows(payload: Dict) -> List[str]:
    from repro.obs.diff import AttributionDiff

    diff = AttributionDiff.from_dict(payload)
    peak = max([abs(d.delta_ps) for d in diff.overall]
               + [abs(diff.residual_ps), 1.0])
    rows = [(d.category, d.delta_ps) for d in diff.overall]
    rows.append(("residual", diff.residual_ps))
    out = [
        "<table><tr><th>category</th><th class=num>delta (ms)</th>"
        "<th class=num>share</th><th>waterfall</th></tr>"
    ]
    for category, delta in rows:
        pct = 100.0 * abs(delta) / peak / 2.0      # half-width per side
        left = f'<span class="l" style="width:{pct:.1f}%"></span>' \
            if delta < 0 else ""
        right = f'<span class="r" style="width:{pct:.1f}%"></span>' \
            if delta >= 0 else ""
        out.append(
            f"<tr><td>{_esc(category)}</td>"
            f"<td class=num>{delta / 1e9:+.3f}</td>"
            f"<td class=num>{100 * diff.share(delta):+.1f}%</td>"
            f'<td><span class="wf"><span class="half">{left}</span>'
            f'<span class="mid"></span>'
            f'<span class="half">{right}</span></span></td></tr>')
    out.append("</table>")
    return out


def _html_sparkline(values: List[float], width: int = 120,
                    height: int = 24) -> str:
    if len(values) < 2:
        return f'<svg class=spark width={width} height={height}></svg>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pts = []
    for i, v in enumerate(values):
        x = 2 + (width - 4) * i / (len(values) - 1)
        y = height - 3 - (height - 6) * (v - lo) / span
        pts.append(f"{x:.1f},{y:.1f}")
    return (f'<svg class=spark width={width} height={height} '
            f'role="img"><polyline fill="none" stroke-width="2" '
            f'points="{" ".join(pts)}"/></svg>')


def _html_topo_parts(exp_id: str, owner: str, payload: Dict) -> List[str]:
    from repro.obs.hotspot import HotspotReport

    report = HotspotReport.from_dict(payload)
    where = f"<code>{_esc(exp_id)}</code>" + \
        (f" / {_esc(owner)}" if owner else "")
    node, share = report.hottest_home()
    parts = [
        f"<h3>{where} — {_esc(report.workload_name)} on "
        f"<code>{_esc(report.config_name)}</code> (P={report.n_nodes})</h3>",
        f"<p class=sub>{report.total_accesses} DSM transactions, "
        f"{100 * report.remote_fraction:.1f}% remote; hottest home node "
        f"{node} ({100 * share:.1f}% of home traffic)</p>",
        "<table><tr><th>req\\home</th>"
        + "".join(f"<th class=num>{h}</th>" for h in range(report.n_nodes))
        + "</tr>",
    ]
    peak = max((max(row) for row in report.matrix if row), default=0) or 1
    for r in range(report.n_nodes):
        cells = []
        for value in report.matrix[r]:
            # Heat-shade: diverging-warm alpha scaled to the hottest cell.
            alpha = 0.45 * value / peak
            style = (f' style="background:'
                     f'color-mix(in srgb, var(--pos) {100 * alpha:.0f}%, '
                     f'transparent)"') if value else ""
            cells.append(f"<td class=num{style}>{value}</td>")
        parts.append(f"<tr><th class=num>{r}</th>{''.join(cells)}</tr>")
    parts.append("</table>")
    if report.hot_regions:
        parts.append(
            f"<table><tr><th>hot {_esc(report.region)}</th>"
            "<th class=num>home</th><th class=num>accesses</th>"
            "<th class=num>remote</th><th class=num>sharers</th>"
            "<th>requesters</th></tr>")
        for hr in report.hot_regions[:5]:
            req = ",".join(str(n) for n in hr.requesters)
            parts.append(
                f"<tr><td><code>{hr.base_paddr:#x}</code></td>"
                f"<td class=num>{hr.home}</td>"
                f"<td class=num>{hr.accesses}</td>"
                f"<td class=num>{100 * hr.remote_fraction:.0f}%</td>"
                f"<td class=num>{hr.peak_sharers}</td>"
                f"<td>{_esc(req)}</td></tr>")
        parts.append("</table>")
    sampled = [(name, info) for name, info in sorted(
        report.occupancy.items()) if info.get("series")]
    if sampled:
        parts.append("<table><tr><th>queue</th><th class=num>mean</th>"
                     "<th class=num>max</th><th>occupancy over time</th>"
                     "</tr>")
        for name, info in sampled:
            parts.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f"<td class=num>{info['mean']:.2f}</td>"
                f"<td class=num>{info['max']:.0f}</td>"
                f"<td>{_html_sparkline(info['series'])}</td></tr>")
        parts.append("</table>")
    return parts


def _html_txn_parts(exp_id: str, owner: str, payload: Dict) -> List[str]:
    from repro.obs.txn import TxnReport, _fmt_ps

    report = TxnReport.from_dict(payload)
    where = f"<code>{_esc(exp_id)}</code>" + \
        (f" / {_esc(owner)}" if owner else "")
    parts = [
        f"<h3>{where} — {_esc(report.workload)} on "
        f"<code>{_esc(report.config)}</code> (P={report.n_cpus})</h3>",
        f"<p class=sub>{report.total_txns} transactions in "
        f"{len(report.kinds)} kinds; residual {report.residual_ps} ps "
        f"across {report.residual_txns} transactions</p>",
        "<table><tr><th>kind</th><th class=num>count</th>"
        "<th class=num>p50</th><th class=num>p90</th>"
        "<th class=num>p99</th><th class=num>mean</th>"
        "<th>segment mix (wait vs service)</th></tr>",
    ]
    for key in sorted(report.kinds):
        entry = report.kinds[key]
        mean = entry["total_ps"] // max(1, entry["count"])
        # Per-kind wait/service split across all segments: the diverging
        # pair reads as "queueing (warm) vs doing work (cool)".
        wait = sum(s["wait_ps"] for s in entry["segments"].values())
        service = sum(s["service_ps"] for s in entry["segments"].values())
        span = wait + service
        mix = ""
        if span:
            wpct = 100.0 * wait / span
            mix = (
                '<span class="wf" style="width:160px">'
                f'<span class="r" style="width:{wpct:.1f}%"></span>'
                f'<span class="l" style="width:{100 - wpct:.1f}%;'
                'margin-left:0;border-radius:0 4px 4px 0"></span></span>')
        parts.append(
            f"<tr><td><code>{_esc(key)}</code></td>"
            f"<td class=num>{entry['count']}</td>"
            f"<td class=num>{_fmt_ps(entry['p50_ps'])}</td>"
            f"<td class=num>{_fmt_ps(entry['p90_ps'])}</td>"
            f"<td class=num>{_fmt_ps(entry['p99_ps'])}</td>"
            f"<td class=num>{_fmt_ps(mean)}</td>"
            f"<td>{mix}</td></tr>")
    parts.append("</table>")
    if report.top:
        slowest = report.top[-1]
        parts.append(
            f"<details><summary class=sub>slowest transaction: "
            f"<code>{_esc(slowest['kind'])}</code> "
            f"node{slowest['node']}→home{slowest['home']}, "
            f"{_fmt_ps(slowest['latency_ps'])}</summary>"
            "<table><tr><th>segment</th><th class=num>wait</th>"
            "<th class=num>service</th></tr>")
        for name, wait, service in slowest["segments"]:
            parts.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f"<td class=num>{_fmt_ps(wait)}</td>"
                f"<td class=num>{_fmt_ps(service)}</td></tr>")
        parts.append(
            f"<tr><td>residual</td><td class=num colspan=2>"
            f"{slowest['residual_ps']} ps</td></tr></table></details>")
    return parts


def render_html(results: Sequence, ledger_records: Sequence = (),
                title: str = "Validation dashboard",
                bench_records: Sequence = ()) -> str:
    total = sum(len(r.findings) for r in results)
    ok = sum(1 for r in results for f in r.findings if f.ok)
    runs = sum(r.farm_runs for r in results)
    hits = sum(r.farm_hits for r in results)
    wall = sum(r.wall_seconds for r in results)
    parts = [
        "<!doctype html><html lang=en><head><meta charset=utf-8>",
        f"<title>{_esc(title)}</title>",
        '<meta name=viewport content="width=device-width, initial-scale=1">',
        f"<style>{_css()}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        '<div class="tiles">',
        f'<div class=tile><b>{ok}/{total}</b><span>shape checks hold'
        f"</span></div>",
        f"<div class=tile><b>{len(results)}</b><span>experiments</span></div>",
        f"<div class=tile><b>{runs}</b><span>simulated runs</span></div>",
        f"<div class=tile><b>{hits}</b><span>cache replays</span></div>",
        f"<div class=tile><b>{wall:.1f}s</b><span>wall time</span></div>",
        "</div>",
        "<h2>Paper vs. measured</h2>",
    ]
    for result in results:
        n_ok = sum(1 for f in result.findings if f.ok)
        n = len(result.findings)
        chip = (f'<span class=ok>✓ {n_ok}/{n} checks</span>' if n_ok == n
                else f'<span class=bad>✗ {n_ok}/{n} checks</span>')
        parts.append(f"<h3><code>{_esc(result.exp_id)}</code> "
                     f"{_esc(result.title)} — {chip}</h3>")
        if result.findings:
            parts.append("<table><tr><th>check</th><th>paper</th>"
                         "<th>measured</th><th>holds</th></tr>")
            for f in result.findings:
                mark = ('<span class=ok>✓ yes</span>' if f.ok
                        else '<span class=bad>✗ no</span>')
                note = f" <span class=sub>({_esc(f.note)})</span>" \
                    if f.note else ""
                parts.append(f"<tr><td>{_esc(f.name)}</td>"
                             f"<td>{_esc(f.paper)}</td>"
                             f"<td>{_esc(f.measured)}{note}</td>"
                             f"<td>{mark}</td></tr>")
            parts.append("</table>")
        parts.append(f"<details><summary class=sub>rendered output"
                     f"</summary><pre>{_esc(result.rendered)}</pre></details>")

    attributions = collect_attributions(results)
    waterfalls = [(e, o, p) for e, o, p in attributions if _is_waterfall(p)]
    tunings = [(e, o, p) for e, o, p in attributions
               if not _is_waterfall(p) and p.get("kind") == "tuning"]
    if waterfalls or tunings:
        parts.append("<h2>Where the error comes from</h2>")
    if waterfalls:
        parts.append(
            '<p class=legend><span class=swatch '
            'style="background:var(--pos)"></span>candidate spends more '
            'machine time than the reference'
            '<span class=swatch style="background:var(--neg)"></span>'
            'candidate spends less — the residual row is gap the traces '
            'leave unattributed</p>')
    for exp_id, owner, payload in waterfalls:
        from repro.obs.diff import AttributionDiff

        diff = AttributionDiff.from_dict(payload)
        where = f"<code>{_esc(exp_id)}</code>" + \
            (f" / {_esc(owner)}" if owner else "")
        parts.append(
            f"<h3>{where} — {_esc(diff.workload)}: "
            f"<code>{_esc(diff.cand_config)}</code> vs "
            f"<code>{_esc(diff.ref_config)}</code> (P={diff.n_cpus})</h3>"
            f"<p class=sub>error {diff.percent_error:+.1f}%, "
            f"{100 * diff.explained_fraction:.1f}% of the machine-time gap "
            f"attributed</p>")
        parts.extend(_html_waterfall_rows(payload))
    for exp_id, owner, payload in tunings:
        where = f"<code>{_esc(exp_id)}</code>" + \
            (f" / {_esc(owner)}" if owner else "")
        tlb = payload.get("tlb_refill_cycles", {})
        parts.append(
            f"<h3>{where} — calibration against "
            f"<code>{_esc(payload.get('reference', '?'))}</code></h3><ul>"
            f"<li>TLB refill {tlb.get('before', 0):.0f} → "
            f"{tlb.get('after', 0):.0f} cycles "
            f"(target {tlb.get('target', 0):.0f})</li>"
            f"<li>L2 interface occupancy "
            f"{payload.get('l2_port_occupancy_cycles', 0):.1f} cycles</li>")
        before = payload.get("case_error_before", {})
        after = payload.get("case_error_after", {})
        for case in before:
            parts.append(f"<li>{_esc(case)}: error "
                         f"{100 * before[case]:+.1f}% → "
                         f"{100 * after.get(case, 0):+.1f}%</li>")
        parts.append("</ul>")

    topos = [(e, o, p) for e, o, p in attributions if _is_topo(p)]
    if topos:
        parts.append(
            "<h2>Where in the machine</h2>"
            "<p class=legend>spatial evidence from the topo recorder: "
            "traffic by (requesting node, home node), hottest regions with "
            "sharer sets, and sampled queue occupancy</p>")
        for exp_id, owner, payload in topos:
            parts.extend(_html_topo_parts(exp_id, owner, payload))

    txns = [(e, o, p) for e, o, p in attributions if _is_txn(p)]
    if txns:
        parts.append(
            "<h2>Where does latency come from</h2>"
            "<p class=legend>per-transaction anatomy from the txn "
            "recorder: each memory transaction followed end-to-end, "
            "segments summing exactly to its latency"
            '<span class=swatch style="background:var(--pos)"></span>'
            "queue wait"
            '<span class=swatch style="background:var(--neg)"></span>'
            "service</p>")
        for exp_id, owner, payload in txns:
            parts.extend(_html_txn_parts(exp_id, owner, payload))

    trends = [r for r in results if r.exp_id in TREND_EXPERIMENTS]
    if trends:
        parts.append("<h2>Trend agreement</h2><ul>")
        for result in trends:
            for f in result.findings:
                mark = ('<span class=ok>✓</span>' if f.ok
                        else '<span class=bad>✗</span>')
                parts.append(f"<li>{mark} <code>{_esc(result.exp_id)}</code> "
                             f"{_esc(f.name)}: {_esc(f.measured)}</li>")
        parts.append("</ul>")

    groups = group_ledger(ledger_records)
    if groups:
        parts.append(
            "<h2>Ledger trends</h2>"
            "<p class=legend>parallel time per run group, oldest → newest"
            "</p><table><tr><th>run group</th><th class=num>records</th>"
            "<th>trend</th><th class=num>latest (ms)</th>"
            "<th class=num>error</th></tr>")
        for group, history in sorted(groups.items()):
            workload, config, n_cpus, scale = group
            latest = history[-1]
            err = ("" if latest.percent_error is None
                   else f"{latest.percent_error:+.1f}%")
            parts.append(
                f"<tr><td>{_esc(workload)}@{_esc(config)}/P{n_cpus}/"
                f"{_esc(scale)}</td><td class=num>{len(history)}</td>"
                f"<td>{_html_sparkline([r.parallel_ps for r in history])}"
                f"</td><td class=num>{latest.parallel_ps / 1e9:.3f}</td>"
                f"<td class=num>{err}</td></tr>")
        parts.append("</table>")

    if bench_records:
        from repro.obs.perf import dominant_reason

        parts.append(
            "<h2>How fast is the simulator</h2>"
            "<p class=legend>headline wall clocks from the committed "
            "BENCH perf ledgers (<code>benchmarks/BENCH_*.json</code>); "
            "<code>python -m repro.obs perf --baseline ...</code> gates "
            "regressions against these numbers</p>"
            "<table><tr><th>bench</th><th>case</th>"
            "<th class=num>wall (s)</th><th class=num>events/s</th>"
            "<th class=num>speedup</th><th class=num>batched</th>"
            "<th>dominant fallback</th></tr>")
        for r in sorted(bench_records, key=lambda r: (r.bench, r.case)):
            eps = ("" if r.events_per_sec is None
                   else f"{r.events_per_sec:,.0f}")
            speedup = "" if r.speedup is None else f"{r.speedup:.1f}x"
            batched = ("" if r.batch_fraction is None
                       else f"{100 * r.batch_fraction:.1f}%")
            reason = dominant_reason(r.fallback_reasons or {}) or ""
            parts.append(
                f"<tr><td>{_esc(r.bench)}</td>"
                f"<td><code>{_esc(r.case)}</code></td>"
                f"<td class=num>{r.wall_s:.3f}</td>"
                f"<td class=num>{eps}</td>"
                f"<td class=num>{speedup}</td>"
                f"<td class=num>{batched}</td>"
                f"<td>{_esc(reason)}</td></tr>")
        parts.append("</table>")

    parts.append('<p class=sub>generated by <code>python -m repro.harness '
                 "--dashboard</code></p></body></html>")
    return "".join(parts)


def render_dashboard(results: Sequence, out_dir,
                     ledger_records: Optional[Sequence] = None,
                     title: str = "Validation dashboard",
                     bench_records: Optional[Sequence] = None,
                     ) -> Tuple[Path, Path]:
    """Write ``dashboard.html`` + ``dashboard.md`` into *out_dir*.

    Returns the two paths.  *ledger_records* normally comes from
    :func:`repro.obs.metrics.read_ledger`; pass None to omit the trends
    section.  *bench_records* normally comes from
    :func:`repro.obs.perf.read_bench` over the committed
    ``benchmarks/BENCH_*.json`` ledgers; pass None to omit the
    "How fast is the simulator" section.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    records = list(ledger_records) if ledger_records else []
    benches = list(bench_records) if bench_records else []
    html_path = out_dir / "dashboard.html"
    md_path = out_dir / "dashboard.md"
    html_path.write_text(render_html(results, records, title, benches))
    md_path.write_text(render_markdown(results, records, title, benches))
    return html_path, md_path
