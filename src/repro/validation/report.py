"""Text rendering of tables and figures (terminal-friendly).

The harness regenerates the paper's figures as ASCII bar/line charts so a
bench run's output can be compared side by side with the published plots.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

BAR_WIDTH = 48


def ascii_bar(value: float, max_value: float, width: int = BAR_WIDTH) -> str:
    filled = 0 if max_value <= 0 else int(round(width * value / max_value))
    return "#" * max(0, min(width, filled))


def bar_chart(title: str, labels: Sequence[str], values: Sequence[float],
              reference: float = 1.0) -> str:
    """Horizontal bar chart with a reference tick (the 1.0 hardware line)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    top = max(list(values) + [reference]) * 1.05
    ref_col = int(round(BAR_WIDTH * reference / top))
    lines = [title]
    for label, value in zip(labels, values):
        bar = ascii_bar(value, top)
        if len(bar) < ref_col:
            bar = bar + " " * (ref_col - len(bar) - 1) + "|"
        lines.append(f"  {label:26s} {value:6.2f} {bar}")
    lines.append(f"  {'':26s} {'':6s} " + " " * (ref_col - 1)
                 + f"^ reference = {reference:g}")
    return "\n".join(lines)


def line_chart(title: str, x_values: Sequence[int],
               series: Mapping[str, Mapping[int, float]],
               height: int = 16, ideal: bool = True) -> str:
    """ASCII line chart of speedup curves (one glyph per series)."""
    glyphs = "o*x+#@%&"
    max_y = max(max(curve.values()) for curve in series.values())
    if ideal:
        max_y = max(max_y, float(max(x_values)))
    max_y *= 1.05
    cols = {x: 4 + i * 6 for i, x in enumerate(x_values)}
    width = max(cols.values()) + 2
    grid = [[" "] * width for _ in range(height)]
    for i, (name, curve) in enumerate(series.items()):
        glyph = glyphs[i % len(glyphs)]
        for x, y in curve.items():
            if x not in cols:
                continue
            row = height - 1 - int((y / max_y) * (height - 1))
            grid[row][cols[x]] = glyph
    if ideal:
        for x in x_values:
            row = height - 1 - int((x / max_y) * (height - 1))
            if grid[row][cols[x]] == " ":
                grid[row][cols[x]] = "."
    lines = [title]
    for r, row in enumerate(grid):
        y_label = max_y * (height - 1 - r) / (height - 1)
        lines.append(f"{y_label:6.1f} |" + "".join(row))
    lines.append("       +" + "-" * width)
    axis = [" "] * width
    for x, col in cols.items():
        label = str(x)
        for k, ch in enumerate(label):
            if col + k < width:
                axis[col + k] = ch
    lines.append("        " + "".join(axis) + "  (processors)")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"  legend: {legend}" + ("   . ideal" if ideal else ""))
    return "\n".join(lines)


#: Eight-level block glyphs, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of *values* (ledger trend rows).

    Scaling is min..max of the series so small drifts stay visible; a
    flat series renders as a line of the lowest glyph.
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_GLYPHS[0] * len(values)
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[int(round(top * (v - lo) / span))] for v in values
    )


def kv_table(title: str, rows: Sequence[Sequence[str]],
             headers: Sequence[str]) -> str:
    """Fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
