"""The paper's core contribution: the simulator-validation framework.

Compare simulators against a gold standard (:mod:`comparison`), calibrate
them with microbenchmarks (:mod:`tuning`), evaluate trend prediction
(:mod:`trends`), probe memory-model sensitivity (:mod:`sensitivity`), and
inject/demonstrate the classic performance bugs (:mod:`bugs`).
"""

from repro.validation.bugs import (
    CACHEOP_BUG,
    CacheFlushWorkload,
    FAST_ISSUE_BUG,
    KNOWN_BUGS,
    PerformanceBug,
    demonstrate_bug,
    get_bug,
)
from repro.validation.comparison import (
    ComparisonRow,
    ComparisonTable,
    ReferenceCache,
    compare_simulators,
)
from repro.validation.dashboard import (
    render_dashboard,
    render_html,
    render_markdown,
)
from repro.validation.metrics import (
    mean_abs_percent_error,
    percent_error,
    rank_order_preserved,
    relative_time,
    speedup,
    trend_agreement,
)
from repro.validation.sensitivity import (
    HotspotStudy,
    hotspot_evidence,
    hotspot_study,
    txn_evidence,
)
from repro.validation.trends import (
    DEFAULT_CPU_COUNTS,
    SpeedupCurve,
    SpeedupStudy,
    speedup_study,
)
from repro.validation.tuning import Tuner, TuningReport, measure_port_occupancy_cycles

__all__ = [
    "CACHEOP_BUG",
    "CacheFlushWorkload",
    "FAST_ISSUE_BUG",
    "KNOWN_BUGS",
    "PerformanceBug",
    "demonstrate_bug",
    "get_bug",
    "ComparisonRow",
    "ComparisonTable",
    "ReferenceCache",
    "compare_simulators",
    "render_dashboard",
    "render_html",
    "render_markdown",
    "mean_abs_percent_error",
    "percent_error",
    "rank_order_preserved",
    "relative_time",
    "speedup",
    "trend_agreement",
    "HotspotStudy",
    "hotspot_evidence",
    "hotspot_study",
    "txn_evidence",
    "DEFAULT_CPU_COUNTS",
    "SpeedupCurve",
    "SpeedupStudy",
    "speedup_study",
    "Tuner",
    "TuningReport",
    "measure_port_occupancy_cycles",
]
