"""The calibration loop: closing the simulation loop (Section 3.1.2).

Given an untuned simulator configuration and a reference platform (the
hardware stand-in), :class:`Tuner` reproduces the paper's tuning procedure
step by step:

1. **TLB refill cost** -- run the TLB-timing microbenchmark on the
   reference, set the simulator's ``tlb_refill_cycles`` to the measured
   value (the 25/35 -> 65 cycle fix).
2. **Secondary-cache interface occupancy** -- compare tight and spaced
   dependent-load chains on the reference; the gap beyond the spacing
   computation is the interface occupancy the untuned models lack
   (snbench's restart-time methodology).
3. **FlashLite latencies** -- measure the five protocol cases on the
   reference and on the simulator and adjust the per-case handler extras
   until all five match ("we easily tuned FlashLite parameters until read
   latencies for all five protocol read cases also matched").

The output is a new :class:`~repro.sim.configs.SimulatorConfig` plus a
:class:`TuningReport` recording every parameter change and the before and
after measurements -- the artefact EXPERIMENTS.md's Table 3 section is
generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import MachineScale, REPRO_SCALE
from repro.common.errors import TuningError
from repro.memsys.params import PROTOCOL_CASES
from repro.sim.configs import SimulatorConfig, hardware_config
from repro.workloads.microbench import (
    MICROBENCH_CPUS,
    DependentLoads,
    measure_all_cases,
    measure_dependent_loads,
    measure_spacing_chain_cycles,
    measure_tlb_refill,
)

#: Dependent ALU ops inserted between spaced chase loads; long enough to
#: cover any plausible interface occupancy.
SPACING_OPS = 24


@dataclass
class TuningReport:
    """What the calibration changed and how well it converged."""

    reference_name: str
    target_cases_ns: Dict[str, float] = field(default_factory=dict)
    before_cases_ns: Dict[str, float] = field(default_factory=dict)
    after_cases_ns: Dict[str, float] = field(default_factory=dict)
    target_tlb_cycles: float = 0.0
    before_tlb_cycles: float = 0.0
    after_tlb_cycles: float = 0.0
    port_occupancy_cycles: float = 0.0
    rounds: int = 0
    case_extra_adjust_ps: Dict[str, int] = field(default_factory=dict)

    def max_case_error(self) -> float:
        """Worst relative error across protocol cases after tuning."""
        return max(
            abs(self.after_cases_ns[c] - self.target_cases_ns[c])
            / self.target_cases_ns[c]
            for c in self.target_cases_ns
        )

    def to_attribution(self) -> Dict:
        """The *why* payload for findings built from this calibration.

        Records which knobs moved and how far each protocol case's error
        shrank -- the tuning-side analogue of an
        :class:`~repro.obs.diff.AttributionDiff` waterfall, attached to
        :class:`~repro.harness.findings.Finding` rows so studies remember
        why an error changed, not just that it did.
        """
        def errors(cases_ns: Dict[str, float]) -> Dict[str, float]:
            return {
                case: (cases_ns[case] - self.target_cases_ns[case])
                / self.target_cases_ns[case]
                for case in self.target_cases_ns
            }

        return {
            "kind": "tuning",
            "reference": self.reference_name,
            "rounds": self.rounds,
            "tlb_refill_cycles": {
                "before": self.before_tlb_cycles,
                "after": self.after_tlb_cycles,
                "target": self.target_tlb_cycles,
            },
            "l2_port_occupancy_cycles": self.port_occupancy_cycles,
            "case_extra_adjust_ps": dict(self.case_extra_adjust_ps),
            "case_error_before": errors(self.before_cases_ns),
            "case_error_after": errors(self.after_cases_ns),
        }

    def format(self) -> str:
        lines = [f"calibration against {self.reference_name}"]
        lines.append(
            f"  TLB refill: {self.before_tlb_cycles:.0f} -> "
            f"{self.after_tlb_cycles:.0f} cycles "
            f"(target {self.target_tlb_cycles:.0f})"
        )
        lines.append(
            f"  L2 interface occupancy: {self.port_occupancy_cycles:.1f} cycles"
        )
        lines.append(f"  {'case':22s}{'before':>10s}{'after':>10s}{'target':>10s}")
        for case in self.target_cases_ns:
            lines.append(
                f"  {case:22s}{self.before_cases_ns[case]:10.0f}"
                f"{self.after_cases_ns[case]:10.0f}"
                f"{self.target_cases_ns[case]:10.0f}"
            )
        lines.append(f"  converged in {self.rounds} round(s), "
                     f"max case error {self.max_case_error() * 100:.1f}%")
        return "\n".join(lines)


def measure_port_occupancy_cycles(config: SimulatorConfig,
                                  scale: MachineScale = REPRO_SCALE,
                                  n_loads: int = 100) -> float:
    """Tight-vs-spaced dependent-load gap, in processor cycles.

    The spaced chain inserts SPACING_OPS serially dependent single-cycle
    ops per load; subtracting that chain's separately measured cost on the
    same core from the gap between the two runs isolates the interface
    occupancy.
    """
    from repro.sim import farm_hooks
    from repro.sim.request import RunRequest

    tight = measure_dependent_loads(config, "local_clean", scale, n_loads)
    spaced_wl = DependentLoads("local_clean", scale, n_loads,
                               spacing_ops=SPACING_OPS)
    spaced_run = farm_hooks.run(
        RunRequest(config, spaced_wl, n_cpus=MICROBENCH_CPUS))
    spaced = spaced_run.parallel_ps / n_loads / 1000.0
    chain_cycles = measure_spacing_chain_cycles(config, scale, SPACING_OPS)
    cycle_ns = config.core.clock.cycle_ps / 1000.0
    gap_cycles = (tight - spaced) / cycle_ns + chain_cycles
    return max(0.0, gap_cycles)


class Tuner:
    """Fits an untuned simulator to reference microbenchmark measurements."""

    def __init__(self, reference: Optional[SimulatorConfig] = None,
                 scale: MachineScale = REPRO_SCALE, n_loads: int = 200,
                 max_rounds: int = 4, tolerance: float = 0.02):
        self.reference = reference or hardware_config()
        self.scale = scale
        self.n_loads = n_loads
        self.max_rounds = max_rounds
        self.tolerance = tolerance

    def fit(self, config: SimulatorConfig):
        """Calibrate *config*; returns (tuned_config, TuningReport)."""
        report = TuningReport(reference_name=self.reference.name)

        # Step 1: TLB refill cost.
        report.target_tlb_cycles = measure_tlb_refill(self.reference, self.scale)
        report.before_tlb_cycles = measure_tlb_refill(config, self.scale)
        core = config.core
        if config.os_model.models_tlb:
            core = core.with_updates(
                tlb_refill_cycles=round(report.target_tlb_cycles))

        # Step 2: secondary-cache interface occupancy.
        occ = measure_port_occupancy_cycles(self.reference, self.scale)
        core = core.with_updates(l2_port_occupancy_cycles=round(occ * 2) / 2)
        report.port_occupancy_cycles = core.l2_port_occupancy_cycles
        config = config.with_core(core, suffix="-cal")

        # Step 3: per-case FlashLite latencies.
        report.target_cases_ns = measure_all_cases(
            self.reference, self.scale, self.n_loads)
        report.before_cases_ns = measure_all_cases(
            config, self.scale, self.n_loads)
        params = config.memsys_params(MICROBENCH_CPUS)
        measured = dict(report.before_cases_ns)
        total_adjust = {case: 0 for case in PROTOCOL_CASES}
        for round_no in range(1, self.max_rounds + 1):
            report.rounds = round_no
            extras = dict(params.case_extra_ps)
            for case in PROTOCOL_CASES:
                delta_ps = int(
                    (report.target_cases_ns[case] - measured[case]) * 1000)
                extras[case] = extras.get(case, 0) + delta_ps
                total_adjust[case] += delta_ps
            params = params.with_updates(
                case_extra_ps=extras, name=params.name + "*")
            config = config.with_memsys_override(params)
            measured = {
                case: measure_dependent_loads(config, case, self.scale,
                                              self.n_loads)
                for case in PROTOCOL_CASES
            }
            worst = max(
                abs(measured[c] - report.target_cases_ns[c])
                / report.target_cases_ns[c]
                for c in PROTOCOL_CASES
            )
            if worst <= self.tolerance:
                break
        else:
            raise TuningError(
                f"calibration did not converge within {self.max_rounds} rounds "
                f"(worst case error {worst * 100:.1f}%)"
            )
        report.after_cases_ns = measured
        report.after_tlb_cycles = measure_tlb_refill(config, self.scale)
        report.case_extra_adjust_ps = total_adjust
        return config, report
