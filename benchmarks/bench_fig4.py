"""Regenerate the paper's fig4 (see repro.harness.experiments)."""


def test_fig4(experiment):
    experiment("fig4")
