"""Ablation: page-frame allocation policy (the Section 3.1.2 root cause).

Runs Ocean on the gold-standard machine under the three allocators at one
and four processors.  IRIX-style coloring and the random ablation stay
flat; Solo's sequential policy blows up the uniprocessor run only --
demonstrating that the Ocean misprediction is purely an allocation-policy
artefact, not a workload property.
"""

import dataclasses

from repro.sim import simos_mipsy
from repro.sim.machine import run_workload
from repro.validation.report import kv_table
from repro.workloads import OceanWorkload


def _with_allocator(kind):
    base = simos_mipsy(225, tuned=True)
    os_model = dataclasses.replace(base.os_model, allocator_kind=kind,
                                   name=f"os+{kind}")
    return dataclasses.replace(base, name=f"{base.name}+{kind}",
                               os_model=os_model)


def _sweep():
    rows = []
    times = {}
    for n_cpus in (1, 4):
        for kind in ("irix", "solo", "random"):
            result = run_workload(_with_allocator(kind), OceanWorkload(),
                                  n_cpus)
            times[(kind, n_cpus)] = result.parallel_ps
            rows.append([kind, str(n_cpus), f"{result.parallel_ns / 1e6:.2f}"])
    return rows, times


def test_allocator_ablation(benchmark):
    rows, times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(kv_table("Ocean vs page allocator (Mipsy core, as in Solo)",
                   rows, ["allocator", "CPUs", "parallel ms"]))
    # The pathology is uniprocessor-only and Solo-only.
    assert times[("solo", 1)] > 1.1 * times[("irix", 1)]
    assert times[("solo", 4)] < 1.15 * times[("irix", 4)]
