"""Regenerate the paper's table1 (see repro.harness.experiments)."""


def test_table1(experiment):
    experiment("table1")
