"""The two historic MXS performance bugs, injected and measured (Sec. 3.1.2)."""


def test_bugs(experiment):
    experiment("bugs")
