"""Regenerate the paper's fig6 (see repro.harness.experiments)."""


def test_fig6(experiment):
    experiment("fig6")
