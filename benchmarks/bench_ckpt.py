"""Checkpoint benchmark: save/restore cost and warm-start speedup.

Two quantities gate ``repro.ckpt``:

* **Capture and restore overhead** -- saving a mid-run checkpoint costs
  one replay-to-the-stop-point plus a state walk, and restoring by
  injection must be much cheaper than re-simulating the skipped prefix.
  This bench times both and reports the serialized checkpoint size.
* **Warm-start speedup** -- :func:`repro.ckpt.warm_run` on the TLB
  microbench must beat a cold run by at least
  :data:`MIN_WARM_SPEEDUP` x once the initialization checkpoint is
  cached, with an identical :class:`RunResult`.

Numbers from a representative run live in
``benchmarks/logs/bench_ckpt.log``.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ckpt.py -m slow -s
"""

import json
import time

import pytest

from conftest import emit_bench
from repro import ckpt
from repro.common.config import REPRO_SCALE, TINY_SCALE
from repro.obs.perf import BenchRecord, make_case
from repro.sim import RunRequest, simos_mipsy
from repro.workloads import TlbTimer, make_app

#: Required warm-over-cold speedup once the init checkpoint is cached.
#: The TLB microbench's init prefix (the warm-and-place pass) is only
#: ~1/9 of its events but a larger share of its wall clock -- every
#: access in it faults pages, fills caches and runs the placement
#: protocol, while the measured passes pay the TLB refill alone.
MIN_WARM_SPEEDUP = 1.2


@pytest.mark.slow
def test_checkpoint_cost_and_size():
    """Save/restore latency and on-disk size for a mid-run checkpoint."""
    request = RunRequest(simos_mipsy(150), make_app("fft", TINY_SCALE),
                         1, TINY_SCALE)
    straight = request.execute()

    start = time.perf_counter()
    checkpoint = ckpt.save(request, at_ps=straight.total_ps // 2,
                           mode=ckpt.MODE_QUIESCE)
    save_s = time.perf_counter() - start
    size_kb = len(json.dumps(checkpoint.to_dict())) / 1024

    start = time.perf_counter()
    machine = ckpt.restore(checkpoint, method="inject")
    inject_s = time.perf_counter() - start

    start = time.perf_counter()
    ckpt.restore(checkpoint, method="replay")
    replay_s = time.perf_counter() - start

    skipped = checkpoint.stop["events_processed"]
    print(f"\nfft@tiny mid-run checkpoint: {skipped} events captured, "
          f"{size_kb:.0f} KiB serialized")
    print(f"  save (run-to-gate + walk): {save_s:.2f}s")
    print(f"  restore by injection:      {inject_s:.3f}s")
    print(f"  restore by replay+verify:  {replay_s:.2f}s")

    assert machine.env.events_processed == skipped
    emit_bench("ckpt", [
        BenchRecord(bench="ckpt",
                    case=make_case("fft", "simos-mipsy-150", 1, "tiny",
                                   "ckpt-save"),
                    wall_s=save_s, events=skipped),
        BenchRecord(bench="ckpt",
                    case=make_case("fft", "simos-mipsy-150", 1, "tiny",
                                   "ckpt-inject"),
                    wall_s=inject_s),
        BenchRecord(bench="ckpt",
                    case=make_case("fft", "simos-mipsy-150", 1, "tiny",
                                   "ckpt-replay"),
                    wall_s=replay_s, events=skipped),
    ])
    # Injection must not pay for the skipped prefix the way replay does.
    assert inject_s < replay_s, (
        f"injection ({inject_s:.3f}s) should beat replay ({replay_s:.3f}s)")


#: Timing repeats: one TLB-microbench run takes ~10 ms, so single-shot
#: wall clocks are noise; totals over REPEATS runs are stable.
REPEATS = 20


@pytest.mark.slow
def test_warm_start_speedup(tmp_path):
    """warm_run on the TLB microbench: cached init, identical result."""
    request = RunRequest(simos_mipsy(150), TlbTimer(REPRO_SCALE),
                         1, REPRO_SCALE)

    start = time.perf_counter()
    cold = request.execute()
    for _ in range(REPEATS - 1):
        request.execute()
    cold_s = time.perf_counter() - start

    store = ckpt.CheckpointStore(tmp_path / "ckpt")
    # First warm_run pays for the capture and seeds the store.
    start = time.perf_counter()
    seeded = ckpt.warm_run(request, at_ps=1, store=store)
    seed_s = time.perf_counter() - start
    checkpoint = next(iter([store.get(k.stem) for k in
                            (tmp_path / "ckpt").rglob("*.json")]))

    start = time.perf_counter()
    warm = ckpt.warm_run(request, at_ps=1, store=store)
    for _ in range(REPEATS - 1):
        ckpt.warm_run(request, at_ps=1, store=store)
    warm_s = time.perf_counter() - start

    speedup = cold_s / warm_s
    skipped = checkpoint.stop["events_processed"]
    print(f"\ntlb-refill@repro cold x{REPEATS}:    {cold_s:.2f}s")
    print(f"tlb-refill@repro seeding run: {seed_s:.3f}s "
          f"(captures {skipped} init events)")
    print(f"tlb-refill@repro warm x{REPEATS}:    {warm_s:.2f}s  "
          f"({speedup:.1f}x, each run skips {skipped} events)")

    assert seeded.to_dict() == cold.to_dict()
    assert warm.to_dict() == cold.to_dict()
    assert len(store) == 1
    # The skip itself is exact, not statistical: every warm start begins
    # past the captured init events.
    assert skipped > 0
    machine = ckpt.restore(checkpoint, method="inject")
    assert machine.env.events_processed == skipped
    emit_bench("ckpt", [
        BenchRecord(bench="ckpt",
                    case=make_case("tlb-refill", "simos-mipsy-150", 1,
                                   "repro", f"cold-x{REPEATS}"),
                    wall_s=cold_s),
        BenchRecord(bench="ckpt",
                    case=make_case("tlb-refill", "simos-mipsy-150", 1,
                                   "repro", f"warm-x{REPEATS}"),
                    wall_s=warm_s, speedup=speedup),
    ])
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm start only {speedup:.1f}x faster "
        f"(need >= {MIN_WARM_SPEEDUP}x)")
