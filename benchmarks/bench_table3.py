"""Regenerate the paper's table3 (see repro.harness.experiments)."""


def test_table3(experiment):
    experiment("table3")
