"""Regenerate the paper's table2 (see repro.harness.experiments)."""


def test_table2(experiment):
    experiment("table2")
