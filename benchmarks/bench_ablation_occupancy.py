"""Ablation: how much of the Figure 7 story is controller occupancy?

Sweeps the MAGIC protocol-processor occupancy fraction (0 = the NUMA
simplification, 0.55 = FlashLite's default, 1.0 = handlers fully
serialise) on the unplaced-Radix hotspot at 16 CPUs.  Predicted hotspot
throughput must degrade monotonically as more of each handler's latency
occupies the controller -- the design choice behind splitting handler
latency from occupancy (DESIGN.md).
"""

from repro.sim import simos_mipsy
from repro.sim.machine import run_workload
from repro.validation.report import kv_table
from repro.vm.allocators import Placement
from repro.workloads import make_app


def _sweep():
    base = simos_mipsy(225, tuned=True)
    rows = []
    times = []
    for fraction in (0.0, 0.55, 1.0):
        params = base.memsys_params(16).with_updates(
            pp_occ_fraction=fraction, name=f"fl-occ{fraction}")
        config = base.with_memsys_override(params, f"-occ{fraction}")
        result = run_workload(config, make_app("radix"), 16,
                              placement=Placement.NODE0)
        rows.append([f"{fraction:.2f}", f"{result.parallel_ns / 1e6:.2f}"])
        times.append(result.parallel_ps)
    return rows, times


def test_occupancy_ablation(benchmark):
    rows, times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(kv_table(
        "unplaced Radix @16 CPUs vs protocol-processor occupancy fraction",
        rows, ["occ fraction", "parallel ms"]))
    assert times[0] < times[1] < times[2]
