"""Tracer-off vs. tracer-on overhead of the observability subsystem.

Three measurements on a small Ocean run (the reference run of the
observability acceptance gate):

* **disabled path** -- the instrumented simulator with no tracer
  installed.  Every hook is a module/local load plus an ``is not None``
  test; we time the guard directly and project its share of the run from
  the number of spans an enabled run records.  The projection must stay
  under 5% of the reference run time.
* **enabled path** -- the same run with a recorder installed.  Tracing is
  allowed to cost real time (it records one span per stall/transaction)
  but must stay within a small constant factor of the baseline.
* **disabled topo path** -- the spatial recorder's hooks follow the same
  contract through the ``repro.obs.hooks.topo`` slot; its projected
  disabled-mode share of the run must also stay within the noise budget.
* **disabled perf path** -- the host-phase profiler's brackets
  (``repro.obs.hooks.perf``) guard the engine's dispatch loop, calendar
  pushes and the scalar row path.  Profiling off is the default on every
  measured run, so its guards are held to the same 5% projection budget.
* **disabled txn path** -- the transaction recorder's hooks
  (``repro.obs.hooks.txn``) guard the cache miss path, the DSM
  transaction body, directory transitions, and sync-point write drains.
  Same slot, same contract, same 5% projection budget.

The headline numbers fold into the committed BENCH perf ledger
(``benchmarks/BENCH_obs_overhead.json``) via ``conftest.emit_bench``.

Runs under pytest (``pytest benchmarks/bench_obs_overhead.py -s``; marked
``slow``) or directly (``python benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time

import pytest

from repro.common.config import get_scale
from repro.obs import hooks as obs_hooks
from repro.obs import topo as obs_topo
from repro.obs import txn as obs_txn
from repro.obs.perf import BenchRecord, make_case
from repro.obs.trace import TraceRecorder
from repro.sim.configs import get_config
from repro.sim.machine import Machine, run_workload
from repro.workloads import make_app

#: Enabled run may cost at most this factor over the disabled run.
MAX_ENABLED_RATIO = 4.0
#: Projected disabled-guard overhead must stay under this share of a run.
MAX_DISABLED_OVERHEAD = 0.05
#: Guards executed per recorded span is bounded by a small constant: every
#: span is recorded behind exactly one guard, and hit-path guards that
#: record nothing are at most a handful per span-producing event.
GUARDS_PER_SPAN = 8.0
#: Perf guards executed per engine event: one in the calendar push, one
#: in the dispatch loop, and (amortised) at most one on the row path --
#: row-segment guards fire once per CPU timeslice, not once per row.
PERF_GUARDS_PER_EVENT = 3.0


def _reference_run(tracer=None):
    scale = get_scale("tiny")
    config = get_config("simos-mipsy-150-tuned")
    workload = make_app("ocean", scale)
    start = time.perf_counter()
    if tracer is not None:
        with obs_hooks.tracing(tracer):
            run_workload(config, workload, 2, scale)
    else:
        run_workload(config, workload, 2, scale)
    return time.perf_counter() - start


def _time_guard(iterations: int = 1_000_000) -> float:
    """Seconds per disabled-path guard (module load + is-not-None test)."""
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if obs_hooks.active is not None:  # the disabled fast path
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / iterations


def _time_topo_guard(iterations: int = 1_000_000) -> float:
    """Seconds per disabled topo guard -- the identical slot pattern."""
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if obs_hooks.topo is not None:  # the disabled fast path
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / iterations


def _time_perf_guard(iterations: int = 1_000_000) -> float:
    """Seconds per disabled perf guard -- the identical slot pattern."""
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if obs_hooks.perf is not None:  # the disabled fast path
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / iterations


def _time_txn_guard(iterations: int = 1_000_000) -> float:
    """Seconds per disabled txn guard -- the identical slot pattern."""
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if obs_hooks.txn is not None:  # the disabled fast path
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / iterations


def _event_count() -> int:
    """Engine events one reference run processes."""
    scale = get_scale("tiny")
    config = get_config("simos-mipsy-150-tuned")
    machine = Machine(config, 2, scale)
    machine.run(make_app("ocean", scale))
    return machine.env.events_processed


def _topo_event_count() -> int:
    """Counting-hook invocations one reference run generates."""
    scale = get_scale("tiny")
    config = get_config("simos-mipsy-150-tuned")
    workload = make_app("ocean", scale)
    recorder = obs_topo.TopoRecorder()
    with obs_topo.recording(recorder):
        run_workload(config, workload, 2, scale)
    return recorder.total_events


def _txn_event_count() -> int:
    """Txn-hook invocations one reference run generates."""
    scale = get_scale("tiny")
    config = get_config("simos-mipsy-150-tuned")
    workload = make_app("ocean", scale)
    recorder = obs_txn.TxnRecorder()
    with obs_txn.recording(recorder):
        run_workload(config, workload, 2, scale)
    return recorder.total_events


def measure():
    assert obs_hooks.active is None, "benchmark requires tracing disabled"
    assert obs_hooks.topo is None, "benchmark requires topo disabled"
    assert obs_hooks.perf is None, "benchmark requires profiling disabled"
    assert obs_hooks.txn is None, "benchmark requires txn tracing disabled"
    t_off = min(_reference_run() for _ in range(3))
    recorder = TraceRecorder(capacity=4096)
    t_on = min(
        _reference_run(TraceRecorder(capacity=4096)),
        _reference_run(recorder),
    )
    guard_s = _time_guard()
    projected = recorder.recorded * GUARDS_PER_SPAN * guard_s
    topo_guard_s = _time_topo_guard()
    topo_events = _topo_event_count()
    # Every topo counting site is one guard; with topo disabled the sites
    # cost exactly the guard, so the projection needs no extra factor.
    topo_projected = topo_events * topo_guard_s
    perf_guard_s = _time_perf_guard()
    events = _event_count()
    perf_projected = events * PERF_GUARDS_PER_EVENT * perf_guard_s
    txn_guard_s = _time_txn_guard()
    txn_events = _txn_event_count()
    # Every txn hook site is one guard (open/commit sites fold into the
    # transaction's own events), so the projection needs no extra factor.
    txn_projected = txn_events * txn_guard_s
    return {
        "t_off_s": t_off,
        "t_on_s": t_on,
        "ratio": t_on / t_off,
        "guard_ns": guard_s * 1e9,
        "spans": recorder.recorded,
        "disabled_overhead_fraction": projected / t_off,
        "topo_guard_ns": topo_guard_s * 1e9,
        "topo_events": topo_events,
        "topo_disabled_overhead_fraction": topo_projected / t_off,
        "perf_guard_ns": perf_guard_s * 1e9,
        "events": events,
        "perf_disabled_overhead_fraction": perf_projected / t_off,
        "txn_guard_ns": txn_guard_s * 1e9,
        "txn_events": txn_events,
        "txn_disabled_overhead_fraction": txn_projected / t_off,
    }


def _emit_ledger(m) -> None:
    """Fold the headline numbers into BENCH_obs_overhead.json."""
    from conftest import emit_bench

    config, scale = "simos-mipsy-150-tuned", "tiny"
    guards = [
        ("tracer-guard", m["guard_ns"]),
        ("topo-guard", m["topo_guard_ns"]),
        ("perf-guard", m["perf_guard_ns"]),
        ("txn-guard", m["txn_guard_ns"]),
    ]
    records = [
        BenchRecord(bench="obs_overhead",
                    case=make_case("ocean", config, 2, scale, "obs-off"),
                    wall_s=m["t_off_s"]),
        BenchRecord(bench="obs_overhead",
                    case=make_case("ocean", config, 2, scale, "obs-on"),
                    wall_s=m["t_on_s"]),
    ]
    for mode, guard_ns in guards:
        # One record per disabled-guard microbenchmark: wall clock of the
        # 1M-iteration loop, throughput in guards/second.
        records.append(BenchRecord(
            bench="obs_overhead",
            case=make_case("guards", "disabled-slots", 1, scale, mode),
            wall_s=guard_ns * 1e-9 * 1_000_000,
            events=1_000_000,
            events_per_sec=1e9 / guard_ns if guard_ns else None))
    emit_bench("obs_overhead", records)


@pytest.mark.slow
def test_obs_overhead():
    m = measure()
    print()
    print(f"tracer off : {m['t_off_s'] * 1e3:8.1f} ms")
    print(f"tracer on  : {m['t_on_s'] * 1e3:8.1f} ms  ({m['ratio']:.2f}x)")
    print(f"guard cost : {m['guard_ns']:8.1f} ns "
          f"({m['spans']} spans/run -> projected disabled overhead "
          f"{100 * m['disabled_overhead_fraction']:.2f}%)")
    print(f"topo guard : {m['topo_guard_ns']:8.1f} ns "
          f"({m['topo_events']} events/run -> projected disabled overhead "
          f"{100 * m['topo_disabled_overhead_fraction']:.2f}%)")
    print(f"perf guard : {m['perf_guard_ns']:8.1f} ns "
          f"({m['events']} events/run -> projected disabled overhead "
          f"{100 * m['perf_disabled_overhead_fraction']:.2f}%)")
    print(f"txn guard  : {m['txn_guard_ns']:8.1f} ns "
          f"({m['txn_events']} events/run -> projected disabled overhead "
          f"{100 * m['txn_disabled_overhead_fraction']:.2f}%)")
    _emit_ledger(m)
    assert m["disabled_overhead_fraction"] <= MAX_DISABLED_OVERHEAD, (
        "disabled-tracer guards exceed the 5% budget on the reference run"
    )
    assert m["topo_disabled_overhead_fraction"] <= MAX_DISABLED_OVERHEAD, (
        "disabled-topo guards exceed the 5% budget on the reference run"
    )
    assert m["perf_disabled_overhead_fraction"] <= MAX_DISABLED_OVERHEAD, (
        "disabled-perf guards exceed the 5% budget on the reference run"
    )
    assert m["txn_disabled_overhead_fraction"] <= MAX_DISABLED_OVERHEAD, (
        "disabled-txn guards exceed the 5% budget on the reference run"
    )
    assert m["ratio"] <= MAX_ENABLED_RATIO, (
        f"enabled tracing costs {m['ratio']:.2f}x, "
        f"budget is {MAX_ENABLED_RATIO}x"
    )


if __name__ == "__main__":
    test_obs_overhead()
