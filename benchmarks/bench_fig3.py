"""Regenerate the paper's fig3 (see repro.harness.experiments)."""


def test_fig3(experiment):
    experiment("fig3")
