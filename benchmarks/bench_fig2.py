"""Regenerate the paper's fig2 (see repro.harness.experiments)."""


def test_fig2(experiment):
    experiment("fig2")
