"""Farm benchmark: cold-vs-warm cache replay of a full experiment.

The acceptance bar for the farm is that a second run of an experiment
completes at least :data:`MIN_CACHE_SPEEDUP` x faster by replaying the
content-addressed result cache -- with *identical* findings.  This bench
demonstrates it on ``fig6`` (the speedup-curve study, 15 simulations) at
tiny scale; ``benchmarks/logs/farm_demo.log`` shows the same effect for
``python -m repro.harness all --jobs 4`` at repro scale.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_farm.py -m slow -s
"""

import time

import pytest

from conftest import emit_bench
from repro.common.config import TINY_SCALE
from repro.harness import Farm, ResultCache, run_experiment
from repro.obs.perf import BenchRecord, make_case

#: Required warm-over-cold speedup from cached replay (acceptance: >= 3x).
MIN_CACHE_SPEEDUP = 3.0

BENCH_EXPERIMENT = "fig6"


@pytest.mark.slow
def test_farm_cache_speedup(tmp_path):
    cache = ResultCache(tmp_path / "cache")

    def timed_run():
        farm = Farm(jobs=2, cache=cache)
        start = time.perf_counter()
        with farm.activate():
            result = run_experiment(BENCH_EXPERIMENT, TINY_SCALE)
        return result, time.perf_counter() - start, farm

    cold, cold_s, cold_farm = timed_run()
    warm, warm_s, warm_farm = timed_run()

    speedup = cold_s / warm_s
    print(f"\n{BENCH_EXPERIMENT}@tiny cold {cold_s:.2f}s "
          f"({cold_farm.summary()})")
    print(f"{BENCH_EXPERIMENT}@tiny warm {warm_s:.2f}s "
          f"({warm_farm.summary()}): {speedup:.1f}x")

    # Identical findings, every simulation replayed from cache.
    assert warm.rendered == cold.rendered
    assert ([f.to_dict() for f in warm.findings]
            == [f.to_dict() for f in cold.findings])
    assert warm_farm.hits == int(warm_farm.counters.get("requests"))
    assert int(warm_farm.counters.get("executed")) == 0
    emit_bench("farm", [
        BenchRecord(bench="farm",
                    case=make_case(BENCH_EXPERIMENT, "farm-jobs2", 2,
                                   "tiny", "cold"),
                    wall_s=cold_s),
        BenchRecord(bench="farm",
                    case=make_case(BENCH_EXPERIMENT, "farm-jobs2", 2,
                                   "tiny", "warm"),
                    wall_s=warm_s, speedup=speedup),
    ])
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"warm cache run only {speedup:.1f}x faster "
        f"(need >= {MIN_CACHE_SPEEDUP}x)")
