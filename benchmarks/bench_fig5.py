"""Regenerate the paper's fig5 (see repro.harness.experiments)."""


def test_fig5(experiment):
    experiment("fig5")
