"""Fast-path benchmark: batched vs. reference execution on the hot loops.

Two measurements, both asserting bit-identical ``RunResult``s:

* **resident hot loop** -- :class:`~repro.workloads.hotloop.HotLoopWorkload`,
  the steady-state regime (TLB- and L1-resident working set) where every
  reference is a hit.  Here the batch filter proves and skips nearly
  every row, and the speedup must clear :data:`MIN_HOT_SPEEDUP` (the
  acceptance gate: >= 5x on the hot loops).
* **fig2/table1 application runs** -- the four SPLASH-2 stand-ins on the
  ``simos-mipsy-150`` (fig2) and ``hardware`` (table1) configurations at
  repro scale.  These kernels *stream* (prefetch a block, touch it once,
  move on), so rows are rarely all-hit and the filter mostly falls back;
  the per-run fallback rate is printed so that cost stays visible.  The
  gate here is honesty, not speed: fast mode must never be slower than
  :data:`MAX_APP_SLOWDOWN` of the reference (the filter's probe cost is
  bounded because a failed window hands the whole leading run of slow
  rows back to the scalar path).  Reference and fast repeats are
  interleaved so host drift cancels out of the ratio instead of landing
  on one side of it.

Committed output lives in ``benchmarks/logs/bench_engine_hotpath.log``;
the headline numbers (wall time, events/sec, batch fraction, fallback
reasons) are folded into the committed perf ledger
``benchmarks/BENCH_engine_hotpath.json``, the baseline
``python -m repro.obs perf`` diffs against.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py -m slow -s
"""

from __future__ import annotations

import time

import pytest

from conftest import emit_bench
from repro import fastpath
from repro.common.config import get_scale
from repro.fastpath.filter import BatchFilter
from repro.obs.perf import PerfProfiler, make_case, profiling, run_record
from repro.sim.configs import get_config
from repro.sim.machine import Machine
from repro.workloads import make_app
from repro.workloads.hotloop import HotLoopWorkload

#: The acceptance gate on the resident hot loop.
MIN_HOT_SPEEDUP = 5.0
#: Streaming application runs may pay at most this factor for probing.
MAX_APP_SLOWDOWN = 1.10
#: fig2 simulates the applications on scaled Mipsy; table1 is the FLASH
#: hardware configuration itself.
APP_CONFIGS = ("simos-mipsy-150", "hardware")
APPS = ("fft", "radix", "lu", "ocean")


def _run_once(make_workload, config, scale, mode):
    """One timed run; returns ``(seconds, result, filter, events)``.

    The engine's event count feeds the BENCH ledger's events/sec metric.
    """
    workload = make_workload()
    machine = Machine(config, 1, scale)
    if mode == "fast":
        filt = BatchFilter()
        start = time.perf_counter()
        with fastpath.enabled(filt):
            result = machine.run(workload)
        elapsed = time.perf_counter() - start
    else:
        filt = None
        start = time.perf_counter()
        with fastpath.disabled():
            result = machine.run(workload)
        elapsed = time.perf_counter() - start
    return elapsed, result, filt, machine.env.events_processed


def _timed_pair(make_workload, config, scale, repeats=2):
    """Interleaved best-of-N wall times for the ref and fast modes.

    The modes alternate within each repeat so both bests are sampled
    from the same slice of host conditions.  Timing one mode's repeats
    back-to-back and then the other's lets slow host drift (frequency
    scaling, competing load) land entirely on one side of the ratio and
    trip the honesty gate with no code change behind it.  Returns
    ``{mode: (seconds, result, filter, events)}``.
    """
    best = {}
    for _ in range(repeats):
        for mode in ("ref", "fast"):
            sample = _run_once(make_workload, config, scale, mode)
            if mode not in best or sample[0] < best[mode][0]:
                best[mode] = sample
    return best


@pytest.mark.slow
def test_hot_loop_speedup():
    scale = get_scale("repro")
    config = get_config("simos-mipsy-150")
    make = lambda: HotLoopWorkload(scale)
    best = _timed_pair(make, config, scale)
    t_ref, r_ref, _, e_ref = best["ref"]
    t_fast, r_fast, filt, e_fast = best["fast"]
    speedup = t_ref / t_fast
    print()
    print(f"hotloop@repro reference: {t_ref * 1e3:7.1f} ms")
    print(f"hotloop@repro batched:   {t_fast * 1e3:7.1f} ms  "
          f"({speedup:.2f}x)")
    print(f"  {filt.summary()}")
    assert r_ref.to_dict() == r_fast.to_dict(), (
        "batched hot-loop run diverged from the reference"
    )
    emit_bench("engine_hotpath", [
        run_record("engine_hotpath",
                   make_case("hotloop", config.name, 1, scale.name, "ref"),
                   t_ref, result=r_ref, events=e_ref),
        run_record("engine_hotpath",
                   make_case("hotloop", config.name, 1, scale.name, "fast"),
                   t_fast, result=r_fast, events=e_fast, speedup=speedup),
    ])
    assert speedup >= MIN_HOT_SPEEDUP, (
        f"hot-loop speedup {speedup:.2f}x is below the "
        f"{MIN_HOT_SPEEDUP}x acceptance gate"
    )


@pytest.mark.slow
def test_application_runs_honest():
    scale = get_scale("repro")
    print()
    worst = 0.0
    records = []
    for config_name in APP_CONFIGS:
        config = get_config(config_name)
        for app in APPS:
            make = lambda: make_app(app, scale)
            # Three interleaved repeats per mode: single lu/fft runs vary
            # by ~30% on a loaded host, so best-of-2 can trip the gate on
            # noise alone.
            best = _timed_pair(make, config, scale, repeats=3)
            t_ref, r_ref, _, e_ref = best["ref"]
            t_fast, r_fast, filt, e_fast = best["fast"]
            ratio = t_ref / t_fast
            worst = max(worst, t_fast / t_ref)
            print(f"{app:5s} @ {config_name:15s} "
                  f"ref {t_ref * 1e3:7.1f} ms  fast {t_fast * 1e3:7.1f} ms "
                  f"({ratio:4.2f}x, fallback {filt.fallback_rate():6.1%}, "
                  f"dominant {filt.dominant_reason() or 'none'})")
            assert r_ref.to_dict() == r_fast.to_dict(), (
                f"{app}@{config_name}: batched run diverged from reference"
            )
            records.append(run_record(
                "engine_hotpath",
                make_case(app, config_name, 1, scale.name, "ref"),
                t_ref, result=r_ref, events=e_ref))
            records.append(run_record(
                "engine_hotpath",
                make_case(app, config_name, 1, scale.name, "fast"),
                t_fast, result=r_fast, events=e_fast, speedup=ratio))
    emit_bench("engine_hotpath", records)
    assert worst <= MAX_APP_SLOWDOWN, (
        f"streaming runs pay {worst:.2f}x with the fast path on, "
        f"budget is {MAX_APP_SLOWDOWN}x"
    )


@pytest.mark.slow
def test_perf_smoke_baseline():
    """Seed the tiny-fft case the tier-1 matrix perf-smoke gates against.

    ``scripts/run_tier1_matrix.sh`` runs ``python -m repro.obs perf fft
    --config simos-mipsy-150 --scale tiny --baseline
    benchmarks/BENCH_engine_hotpath.json``; the diff matches records by
    case string, so this test must emit exactly that case.  The record's
    wall time is the unprofiled best-of-N; the host-phase breakdown
    comes from one extra profiled run (its own wall clock travels inside
    ``host_phases``), so the headline timing never pays for profiling.
    """
    scale = get_scale("tiny")
    config = get_config("simos-mipsy-150")
    make = lambda: make_app("fft", scale)
    t_fast, r_fast, _filt, events = min(
        (_run_once(make, config, scale, "fast") for _ in range(2)),
        key=lambda sample: sample[0])
    profiler = PerfProfiler()
    machine = Machine(config, 1, scale)
    with fastpath.enabled():
        with profiling(profiler):
            machine.run(make())
    record = run_record(
        "engine_hotpath",
        make_case("fft", config.name, 1, scale.name, "fast"),
        t_fast, result=r_fast, events=events, profiler=profiler)
    assert record.batch_fraction is not None
    assert record.fallback_reasons, "smoke case lost its reason histogram"
    assert record.host_phases, "profiled run produced no phase breakdown"
    emit_bench("engine_hotpath", [record])


if __name__ == "__main__":
    test_hot_loop_speedup()
    test_application_runs_honest()
    test_perf_smoke_baseline()
