"""Fast-path benchmark: batched vs. reference execution on the hot loops.

Two measurements, both asserting bit-identical ``RunResult``s:

* **resident hot loop** -- :class:`~repro.workloads.hotloop.HotLoopWorkload`,
  the steady-state regime (TLB- and L1-resident working set) where every
  reference is a hit.  Here the batch filter proves and skips nearly
  every row, and the speedup must clear :data:`MIN_HOT_SPEEDUP` (the
  acceptance gate: >= 5x on the hot loops).
* **fig2/table1 application runs** -- the four SPLASH-2 stand-ins on the
  ``simos-mipsy-150`` (fig2) and ``hardware`` (table1) configurations at
  repro scale.  These kernels *stream* (prefetch a block, touch it once,
  move on), so rows are rarely all-hit and the filter mostly falls back;
  the per-run fallback rate is printed so that cost stays visible.  The
  gate here is honesty, not speed: fast mode must never be slower than
  :data:`MAX_APP_SLOWDOWN` of the reference (the filter's probe cost is
  bounded because a failed window hands the whole leading run of slow
  rows back to the scalar path).

Committed output lives in ``benchmarks/logs/bench_engine_hotpath.log``.
Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py -m slow -s
"""

from __future__ import annotations

import time

import pytest

from repro import fastpath
from repro.common.config import get_scale
from repro.fastpath.filter import BatchFilter
from repro.sim.configs import get_config
from repro.sim.machine import run_workload
from repro.workloads import make_app
from repro.workloads.hotloop import HotLoopWorkload

#: The acceptance gate on the resident hot loop.
MIN_HOT_SPEEDUP = 5.0
#: Streaming application runs may pay at most this factor for probing.
MAX_APP_SLOWDOWN = 1.10
#: fig2 simulates the applications on scaled Mipsy; table1 is the FLASH
#: hardware configuration itself.
APP_CONFIGS = ("simos-mipsy-150", "hardware")
APPS = ("fft", "radix", "lu", "ocean")


def _timed(make_workload, config, scale, mode, repeats=2):
    """Best-of-N wall time for one run; returns (seconds, result, filter)."""
    best, result, filt = None, None, None
    for _ in range(repeats):
        workload = make_workload()
        if mode == "fast":
            f = BatchFilter()
            start = time.perf_counter()
            with fastpath.enabled(f):
                r = run_workload(config, workload, 1, scale)
            elapsed = time.perf_counter() - start
        else:
            f = None
            start = time.perf_counter()
            with fastpath.disabled():
                r = run_workload(config, workload, 1, scale)
            elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, result, filt = elapsed, r, f
    return best, result, filt


@pytest.mark.slow
def test_hot_loop_speedup():
    scale = get_scale("repro")
    config = get_config("simos-mipsy-150")
    make = lambda: HotLoopWorkload(scale)
    t_ref, r_ref, _ = _timed(make, config, scale, "ref")
    t_fast, r_fast, filt = _timed(make, config, scale, "fast")
    speedup = t_ref / t_fast
    print()
    print(f"hotloop@repro reference: {t_ref * 1e3:7.1f} ms")
    print(f"hotloop@repro batched:   {t_fast * 1e3:7.1f} ms  "
          f"({speedup:.2f}x)")
    print(f"  {filt.summary()}")
    assert r_ref.to_dict() == r_fast.to_dict(), (
        "batched hot-loop run diverged from the reference"
    )
    assert speedup >= MIN_HOT_SPEEDUP, (
        f"hot-loop speedup {speedup:.2f}x is below the "
        f"{MIN_HOT_SPEEDUP}x acceptance gate"
    )


@pytest.mark.slow
def test_application_runs_honest():
    scale = get_scale("repro")
    print()
    worst = 0.0
    for config_name in APP_CONFIGS:
        config = get_config(config_name)
        for app in APPS:
            make = lambda: make_app(app, scale)
            t_ref, r_ref, _ = _timed(make, config, scale, "ref")
            t_fast, r_fast, filt = _timed(make, config, scale, "fast")
            ratio = t_ref / t_fast
            worst = max(worst, t_fast / t_ref)
            print(f"{app:5s} @ {config_name:15s} "
                  f"ref {t_ref * 1e3:7.1f} ms  fast {t_fast * 1e3:7.1f} ms "
                  f"({ratio:4.2f}x, fallback {filt.fallback_rate():6.1%})")
            assert r_ref.to_dict() == r_fast.to_dict(), (
                f"{app}@{config_name}: batched run diverged from reference"
            )
    assert worst <= MAX_APP_SLOWDOWN, (
        f"streaming runs pay {worst:.2f}x with the fast path on, "
        f"budget is {MAX_APP_SLOWDOWN}x"
    )


if __name__ == "__main__":
    test_hot_loop_speedup()
    test_application_runs_honest()
