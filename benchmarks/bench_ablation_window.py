"""Ablation: out-of-order window/width sensitivity of the MXS model.

The paper configures MXS "as close to an R10000 as possible" but notes
that resource constraints were added only for this study.  This bench
sweeps issue width on FFT to show the dataflow scheduler responds
sensibly: narrower machines are slower, and the effect saturates once
width exceeds the workload's ILP.
"""

from repro.sim import simos_mxs
from repro.sim.machine import run_workload
from repro.validation.report import kv_table
from repro.workloads import make_app


def _sweep():
    rows = []
    times = []
    for width in (1, 2, 4, 8):
        base = simos_mxs(tuned=True)
        config = base.with_core(base.core.with_updates(width=width),
                                f"-w{width}")
        result = run_workload(config, make_app("fft"), 1)
        rows.append([str(width), f"{result.parallel_ns / 1e6:.2f}"])
        times.append(result.parallel_ps)
    return rows, times


def test_window_ablation(benchmark):
    rows, times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(kv_table("FFT on MXS vs issue width", rows,
                   ["width", "parallel ms"]))
    assert times[0] > times[2]          # 1-wide slower than 4-wide
    assert times[3] >= 0.75 * times[2]  # diminishing returns past the ILP
