"""The calibration loop end to end (Sec. 3.1.2's tuning procedure)."""


def test_tuning_loop(experiment):
    experiment("tuning_loop")
