"""TLB refill costs: hardware 65 cycles vs Mipsy 25 / MXS 35 (Sec. 3.1.2)."""


def test_tlb_microbench(experiment):
    experiment("tlb_microbench")
