"""Regenerate the paper's fig1 (see repro.harness.experiments)."""


def test_fig1(experiment):
    experiment("fig1")
