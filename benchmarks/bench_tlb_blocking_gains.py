"""Application-level TLB fixes measured on the hardware (Sec. 3.1.2)."""


def test_tlb_blocking(experiment):
    experiment("tlb_blocking")
