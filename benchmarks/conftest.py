"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures exactly
once (``pedantic`` with a single round: these are experiment replays, not
microbenchmarks of Python code) and prints the rendered table/figure so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
evaluation section end to end.

The replays can route through the experiment farm:

* ``--farm-jobs N`` fans each experiment's simulation batches across an
  N-worker pool and enables the content-addressed result cache, so a
  second benchmark run replays instead of re-simulating;
* ``--farm-no-cache`` keeps the pool but disables the cache (honest
  timings on every run);
* ``--farm-cache-dir PATH`` overrides the cache location (default:
  ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/farm``).

By default (no ``--farm-jobs``) benchmarks run the historical serial
path, so published timings stay comparable.

Benchmarks that measure the *simulator's* speed (engine hot path, farm
cache, checkpoints) additionally fold their headline numbers into the
committed BENCH perf ledger (``benchmarks/BENCH_<name>.json``, the
frozen schema of :mod:`repro.obs.perf`) via :func:`emit_bench`, which is
what ``python -m repro.obs perf --baseline ...`` diffs against.
"""

from pathlib import Path

import pytest

from repro.common.config import REPRO_SCALE
from repro.harness import Farm, ResultCache, run_experiment
from repro.obs.perf import merge_bench

#: Where the committed BENCH_<name>.json perf-ledger files live.
BENCH_DIR = Path(__file__).resolve().parent


def emit_bench(bench, records):
    """Merge *records* into the committed ``BENCH_<bench>.json`` ledger.

    :func:`repro.obs.perf.merge_bench` replaces same-case records and
    keeps the rest, so each benchmark updates only its own cases and
    reruns stay idempotent.
    """
    path = BENCH_DIR / f"BENCH_{bench}.json"
    merge_bench(path, bench, records)
    print(f"bench ledger: updated {len(records)} case(s) in {path.name}")
    return path


def pytest_addoption(parser):
    group = parser.getgroup("farm")
    group.addoption("--farm-jobs", type=int, default=0, metavar="N",
                    help="run experiments through an N-worker farm "
                         "with the result cache enabled")
    group.addoption("--farm-no-cache", action="store_true",
                    help="with --farm-jobs: disable the result cache")
    group.addoption("--farm-cache-dir", default=None, metavar="PATH",
                    help="with --farm-jobs: result cache directory")


@pytest.fixture
def farm(request):
    """The farm configured by --farm-* options, or None (serial path)."""
    jobs = request.config.getoption("--farm-jobs")
    if not jobs:
        return None
    cache = None
    if not request.config.getoption("--farm-no-cache"):
        cache = ResultCache(request.config.getoption("--farm-cache-dir"))
    return Farm(jobs=jobs, cache=cache)


@pytest.fixture
def experiment(benchmark, farm):
    """Run one registered experiment under pytest-benchmark."""

    def _run_one(exp_id):
        if farm is None:
            return run_experiment(exp_id, REPRO_SCALE)
        with farm.activate():
            return run_experiment(exp_id, REPRO_SCALE)

    def run(exp_id, min_ok_fraction=0.5):
        result = benchmark.pedantic(
            lambda: _run_one(exp_id),
            rounds=1, iterations=1,
        )
        print()
        print(result.format())
        if farm is not None:
            print(farm.summary())
        if result.findings:
            ok = sum(1 for f in result.findings if f.ok)
            assert ok >= min_ok_fraction * len(result.findings), (
                f"{exp_id}: only {ok}/{len(result.findings)} shape checks hold"
            )
        return result

    return run
