"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures exactly
once (``pedantic`` with a single round: these are experiment replays, not
microbenchmarks of Python code) and prints the rendered table/figure so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
evaluation section end to end.
"""

import pytest

from repro.common.config import REPRO_SCALE
from repro.harness import run_experiment


@pytest.fixture
def experiment(benchmark):
    """Run one registered experiment under pytest-benchmark."""

    def run(exp_id, min_ok_fraction=0.5):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, REPRO_SCALE),
            rounds=1, iterations=1,
        )
        print()
        print(result.format())
        if result.findings:
            ok = sum(1 for f in result.findings if f.ok)
            assert ok >= min_ok_fraction * len(result.findings), (
                f"{exp_id}: only {ok}/{len(result.findings)} shape checks hold"
            )
        return result

    return run
