"""Regenerate the paper's fig7 (see repro.harness.experiments)."""


def test_fig7(experiment):
    experiment("fig7")
