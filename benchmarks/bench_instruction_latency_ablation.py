"""Adding 5-cycle muls / 19-cycle divides to Mipsy (Sec. 3.1.3)."""


def test_instr_latency(experiment):
    experiment("instr_latency")
